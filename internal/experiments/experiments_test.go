package experiments

import (
	"math"
	"testing"

	"repro/internal/beegfs"
	"repro/internal/cluster"
	"repro/internal/ior"
	"repro/internal/stats"
)

// Test options: enough repetitions for shape checks, small enough to keep
// the suite fast.
func testOpts(seed uint64, reps int) Options {
	return Options{Reps: reps, Seed: seed, FastProtocol: true}
}

func TestProtocolValidate(t *testing.T) {
	if err := DefaultProtocol(1).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Protocol{
		{Repetitions: 0, BlockSize: 10},
		{Repetitions: 10, BlockSize: 0},
		{Repetitions: 10, BlockSize: 10, MinWait: -1},
		{Repetitions: 10, BlockSize: 10, MinWait: 5, MaxWait: 1},
	}
	for i, p := range bad {
		if p.Validate() == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestCampaignRunsAllRepetitions(t *testing.T) {
	cfgs := []Config{
		{Label: "a", Params: ior.Params{Nodes: 2, PPN: 4, TransferSize: beegfs.MiB, StripeCount: 2}.WithTotalSize(2 * beegfs.GiB)},
		{Label: "b", Params: ior.Params{Nodes: 2, PPN: 4, TransferSize: beegfs.MiB, StripeCount: 4}.WithTotalSize(2 * beegfs.GiB)},
	}
	proto := Protocol{Repetitions: 7, BlockSize: 3, MinWait: 0.1, MaxWait: 0.5, Seed: 1}
	recs, err := Campaign{Platform: cluster.PlaFRIM(cluster.Scenario1Ethernet), Proto: proto}.Run(cfgs)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 14 {
		t.Fatalf("records = %d, want 14", len(recs))
	}
	byLabel := GroupByLabel(recs)
	if len(byLabel["a"]) != 7 || len(byLabel["b"]) != 7 {
		t.Fatalf("per-label counts = %d/%d", len(byLabel["a"]), len(byLabel["b"]))
	}
	for _, r := range recs {
		if r.Bandwidth() <= 0 {
			t.Fatalf("record %s/%d has no bandwidth", r.Label, r.Rep)
		}
		if r.Alloc().Count() == 0 {
			t.Fatalf("record %s/%d has no allocation", r.Label, r.Rep)
		}
	}
}

func TestCampaignBlockOrderRandomized(t *testing.T) {
	// With 2 configs x 10 reps and blocks of 10, the run list is
	// [10x a][10x b]; randomized block order must sometimes run b first.
	seenBFirst := false
	for seed := uint64(0); seed < 8 && !seenBFirst; seed++ {
		cfgs := []Config{
			{Label: "a", Params: ior.Params{Nodes: 1, PPN: 2, TransferSize: beegfs.MiB, StripeCount: 2}.WithTotalSize(256 * beegfs.MiB)},
			{Label: "b", Params: ior.Params{Nodes: 1, PPN: 2, TransferSize: beegfs.MiB, StripeCount: 2}.WithTotalSize(256 * beegfs.MiB)},
		}
		proto := Protocol{Repetitions: 10, BlockSize: 10, MinWait: 0.01, MaxWait: 0.02, Seed: seed}
		recs, err := Campaign{Platform: cluster.PlaFRIM(cluster.Scenario1Ethernet), Proto: proto}.Run(cfgs)
		if err != nil {
			t.Fatal(err)
		}
		if recs[0].Label == "b" {
			seenBFirst = true
		}
	}
	if !seenBFirst {
		t.Fatal("block order never put config b first across 8 seeds")
	}
}

func TestCampaignErrors(t *testing.T) {
	p := cluster.PlaFRIM(cluster.Scenario1Ethernet)
	if _, err := (Campaign{Platform: p, Proto: DefaultProtocol(1)}).Run(nil); err == nil {
		t.Fatal("empty config list accepted")
	}
	if _, err := (Campaign{Platform: p, Proto: Protocol{}}).Run([]Config{{}}); err == nil {
		t.Fatal("invalid protocol accepted")
	}
}

func TestFig2SmallSizesSlowerAndNoisier(t *testing.T) {
	pts, err := Fig2(cluster.Scenario1Ethernet, testOpts(1, 15))
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 7 {
		t.Fatalf("points = %d", len(pts))
	}
	first, last := pts[0], pts[len(pts)-1]
	if first.Summary.Mean >= 0.92*last.Summary.Mean {
		t.Fatalf("1 GiB mean %v not visibly below 64 GiB mean %v", first.Summary.Mean, last.Summary.Mean)
	}
	relSpread := func(p SweepPoint) float64 {
		return (p.Summary.Max - p.Summary.Min) / p.Summary.Mean
	}
	if relSpread(first) <= relSpread(last) {
		t.Fatalf("small size not noisier: %v vs %v", relSpread(first), relSpread(last))
	}
	// Stabilization: 32 and 64 GiB means within 5%.
	m32, m64 := pts[5].Summary.Mean, pts[6].Summary.Mean
	if math.Abs(m32-m64)/m64 > 0.05 {
		t.Fatalf("no plateau: 32 GiB %v vs 64 GiB %v", m32, m64)
	}
}

func TestFig4Scenario1Shape(t *testing.T) {
	pts, err := Fig4(cluster.Scenario1Ethernet, testOpts(2, 10))
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 8 {
		t.Fatalf("points = %d", len(pts))
	}
	if pts[0].Summary.Mean < 780 || pts[0].Summary.Mean > 980 {
		t.Fatalf("N=1 mean = %v, want ~880", pts[0].Summary.Mean)
	}
	last := pts[len(pts)-1].Summary.Mean
	if last < 1350 || last > 1600 {
		t.Fatalf("plateau = %v, want ~1460", last)
	}
	// Plateau by N=4: values beyond differ <8%.
	for _, p := range pts[3:] {
		if math.Abs(p.Summary.Mean-last)/last > 0.08 {
			t.Fatalf("no plateau at N=%v: %v vs %v", p.X, p.Summary.Mean, last)
		}
	}
}

func TestFig5Ppn16Similar(t *testing.T) {
	series, err := Fig5(cluster.Scenario2Omnipath, testOpts(3, 6))
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 2 || series[0].PPN != 8 || series[1].PPN != 16 {
		t.Fatalf("series = %+v", series)
	}
	// Below the plateau (client-bound), ppn16 shows the slight intra-node
	// degradation; at the plateau the curves coincide.
	mid := 3 // N=8 in the scenario-2 sweep {1,2,4,8,16,32}
	p8 := series[0].Points[mid].Summary.Mean
	p16 := series[1].Points[mid].Summary.Mean
	if ratio := p16 / p8; ratio >= 1.0 || ratio < 0.8 {
		t.Fatalf("ppn16/ppn8 below plateau = %v, want slight degradation", ratio)
	}
	last8 := series[0].Points[len(series[0].Points)-1].Summary.Mean
	last16 := series[1].Points[len(series[1].Points)-1].Summary.Mean
	if ratio := last16 / last8; ratio > 1.05 || ratio < 0.85 {
		t.Fatalf("ppn16/ppn8 at plateau = %v, want ~1", ratio)
	}
}

func TestFig6Scenario1BimodalityPattern(t *testing.T) {
	pts, err := Fig6(cluster.Scenario1Ethernet, testOpts(4, 30))
	if err != nil {
		t.Fatal(err)
	}
	wantBimodal := map[int]bool{1: false, 2: true, 3: true, 4: false, 5: true, 6: true, 7: false, 8: false}
	for _, p := range pts {
		if p.Bimodal != wantBimodal[p.Count] {
			t.Errorf("count %d bimodal = %v, want %v (mean %v sd %v)",
				p.Count, p.Bimodal, wantBimodal[p.Count], p.Summary.Mean, p.Summary.SD)
		}
	}
	// Peak ~2200 only reachable at counts 2, 6, 8.
	if pts[7].Summary.Mean < 2000 {
		t.Fatalf("count 8 mean = %v, want ~2200", pts[7].Summary.Mean)
	}
	if pts[3].Summary.Max > 1700 {
		t.Fatalf("count 4 max = %v; should stay well below peak", pts[3].Summary.Max)
	}
}

func TestFig6Scenario2MonotoneMeans(t *testing.T) {
	pts, err := Fig6(cluster.Scenario2Omnipath, testOpts(5, 10))
	if err != nil {
		t.Fatal(err)
	}
	prev := 0.0
	for _, p := range pts {
		if p.Summary.Mean < prev*0.98 {
			t.Fatalf("count %d mean %v below count %d (%v)", p.Count, p.Summary.Mean, p.Count-1, prev)
		}
		prev = p.Summary.Mean
	}
	// §IV-C2: 1 -> 8 targets raises the mean by >250% (paper: >350%).
	gain := pts[7].Summary.Mean/pts[0].Summary.Mean - 1
	if gain < 2.5 {
		t.Fatalf("count gain = %.0f%%, want > 250%%", gain*100)
	}
}

func TestFig8AllocationOrdering(t *testing.T) {
	boxes, err := Fig8(testOpts(6, 30))
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]AllocBox{}
	for _, b := range boxes {
		byKey[b.Alloc.Key()] = b
	}
	// Figure 8's groups: same ratio, same performance.
	near := func(a, b float64, tol float64) bool { return math.Abs(a-b)/b <= tol }
	if !near(byKey["(0,1)"].Mean, byKey["(0,2)"].Mean, 0.05) || !near(byKey["(0,2)"].Mean, byKey["(0,3)"].Mean, 0.05) {
		t.Fatalf("(0,x) group not flat: %v %v %v", byKey["(0,1)"].Mean, byKey["(0,2)"].Mean, byKey["(0,3)"].Mean)
	}
	if !near(byKey["(1,2)"].Mean, byKey["(2,4)"].Mean, 0.05) {
		t.Fatalf("(1,2) %v != (2,4) %v", byKey["(1,2)"].Mean, byKey["(2,4)"].Mean)
	}
	if !near(byKey["(1,1)"].Mean, byKey["(4,4)"].Mean, 0.05) {
		t.Fatalf("(1,1) %v != (4,4) %v", byKey["(1,1)"].Mean, byKey["(4,4)"].Mean)
	}
	// Performance increases with min/max ratio.
	if !(byKey["(0,2)"].Mean < byKey["(1,3)"].Mean && byKey["(1,3)"].Mean < byKey["(1,2)"].Mean &&
		byKey["(1,2)"].Mean < byKey["(3,4)"].Mean && byKey["(3,4)"].Mean < byKey["(3,3)"].Mean) {
		t.Fatal("allocation means not ordered by balance ratio")
	}
	// §IV-C1: (3,3) beats the round-robin (1,3) by >40%.
	if gain := byKey["(3,3)"].Mean/byKey["(1,3)"].Mean - 1; gain < 0.4 {
		t.Fatalf("(3,3) over (1,3) = %.0f%%, want ~49%%", gain*100)
	}
}

func TestFig10BalancedAdvantage(t *testing.T) {
	boxes, err := Fig10(testOpts(7, 30))
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]AllocBox{}
	for _, b := range boxes {
		byKey[b.Alloc.Key()] = b
	}
	b33, ok1 := byKey["(3,3)"]
	b24, ok2 := byKey["(2,4)"]
	if !ok1 || !ok2 {
		t.Fatalf("missing count-6 classes: %v", byKey)
	}
	gain := b33.Mean/b24.Mean - 1
	// Paper: 10.15%.
	if gain < 0.04 || gain > 0.25 {
		t.Fatalf("(3,3) over (2,4) = %.1f%%, want ~10%%", gain*100)
	}
	// Count dominates: (4,4) tops everything.
	for _, b := range boxes {
		if b.Mean > byKey["(4,4)"].Mean*1.02 {
			t.Fatalf("allocation %s (%v) beats (4,4) (%v)", b.Alloc, b.Mean, byKey["(4,4)"].Mean)
		}
	}
}

func TestFig11CountNodeInteraction(t *testing.T) {
	cells, err := Fig11(testOpts(8, 4))
	if err != nil {
		t.Fatal(err)
	}
	get := func(count, nodes int) float64 {
		for _, c := range cells {
			if c.Count == count && c.Nodes == nodes {
				return c.Mean
			}
		}
		t.Fatalf("missing cell %d/%d", count, nodes)
		return 0
	}
	// Higher counts reach higher peaks at 32 nodes.
	if !(get(8, 32) > get(6, 32) && get(6, 32) > get(4, 32) && get(4, 32) > get(2, 32)) {
		t.Fatal("peak bandwidth not ordered by stripe count at 32 nodes")
	}
	// Count 8 still gains strongly from 16 to 32 nodes, while count 2 has
	// flattened (lesson 6's "more nodes for more targets").
	gain8 := get(8, 32)/get(8, 16) - 1
	gain2 := get(2, 32)/get(2, 16) - 1
	if gain8 < 0.1 || gain8 < gain2+0.05 {
		t.Fatalf("16->32 gains: count8 %.1f%% vs count2 %.1f%%; want count8 clearly larger", gain8*100, gain2*100)
	}
	// Plateau positions ordered by count: count 2 is at >=90% of its
	// 32-node value by 8 nodes; count 8 is still below 85% at 16 nodes.
	if r := get(2, 8) / get(2, 32); r < 0.90 {
		t.Fatalf("count 2 at 8 nodes = %.0f%% of its peak; want an early plateau", r*100)
	}
	if r := get(8, 16) / get(8, 32); r > 0.85 {
		t.Fatalf("count 8 at 16 nodes = %.0f%% of its peak; want a late plateau", r*100)
	}
}

func TestFig12AggregateAndSlowdown(t *testing.T) {
	rows, err := Fig12(testOpts(9, 12))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		// Aggregate within 25% of the equivalent single application
		// (paper: "very similar").
		ratio := r.AggregateMean / r.EquivalentSingleMean
		if ratio < 0.75 || ratio > 1.1 {
			t.Errorf("apps=%d count=%d: aggregate/equivalent = %v", r.Apps, r.Count, ratio)
		}
		// Individual bandwidth below solo (sharing the infrastructure).
		if r.IndividualMean >= r.SoloMean {
			t.Errorf("apps=%d count=%d: individual %v not below solo %v", r.Apps, r.Count, r.IndividualMean, r.SoloMean)
		}
	}
	// Slow-down grows with the number of applications (count 4 column).
	slow := func(apps int) float64 {
		for _, r := range rows {
			if r.Apps == apps && r.Count == 4 {
				return 1 - r.IndividualMean/r.SoloMean
			}
		}
		return -1
	}
	if !(slow(4) > slow(3) && slow(3) > slow(2)) {
		t.Fatalf("slow-down not increasing with apps: %v %v %v", slow(2), slow(3), slow(4))
	}
}

func TestFig12Count2NeverShares(t *testing.T) {
	// Paper §IV-D: "When the stripe count is 2, applications never, in 100
	// repetitions, shared the same targets" — with 2 apps, the rotating
	// windows cannot overlap even with background creates.
	rows, err := Fig12(testOpts(10, 8))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Apps != 2 || r.Count != 2 {
			continue
		}
		for _, rec := range r.Records {
			if rec.SharedTargets != 0 {
				t.Fatalf("count-2 apps shared %d targets", rec.SharedTargets)
			}
		}
	}
}

func TestFig13SplitsGroups(t *testing.T) {
	rows, err := Fig12(testOpts(11, 25))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Fig13(rows)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ShareAll) == 0 || len(res.ShareNone) == 0 {
		t.Fatalf("groups empty: %d/%d", len(res.ShareAll), len(res.ShareNone))
	}
	// On PlaFRIM's round-robin at count 4 the overlap is all-or-nothing.
	if res.Mixed != 0 {
		t.Fatalf("mixed overlap repetitions = %d, want 0", res.Mixed)
	}
	// The share-all fraction should be minor but present (paper: ~1/3).
	frac := float64(len(res.ShareAll)) / float64(len(res.ShareAll)+len(res.ShareNone))
	if frac < 0.05 || frac > 0.6 {
		t.Fatalf("share-all fraction = %v, want a 0.05-0.6 mix", frac)
	}
	if res.Welch.P < 0 || res.Welch.P > 1 {
		t.Fatalf("p-value = %v", res.Welch.P)
	}
}

func TestFig13RequiresCell(t *testing.T) {
	if _, err := Fig13([]Fig12Row{{Apps: 3, Count: 8}}); err == nil {
		t.Fatal("missing cell accepted")
	}
}

func TestEquation1Aggregate(t *testing.T) {
	// Equation 1 on a hand-built record: two apps, 100 MiB each, window
	// [0, 4]s -> 50 MiB/s.
	cfg := Config{
		Label:  "eq1",
		Params: ior.Params{Nodes: 2, PPN: 2, TransferSize: beegfs.MiB, StripeCount: 4}.WithTotalSize(1 * beegfs.GiB),
		Apps:   2,
	}
	recs, err := Campaign{
		Platform: cluster.PlaFRIM(cluster.Scenario2Omnipath),
		Proto:    Protocol{Repetitions: 1, BlockSize: 1, Seed: 1},
	}.Run([]Config{cfg})
	if err != nil {
		t.Fatal(err)
	}
	rec := recs[0]
	if len(rec.Apps) != 2 {
		t.Fatalf("apps = %d", len(rec.Apps))
	}
	var minStart, maxEnd float64
	minStart = math.Inf(1)
	var vol float64
	for _, a := range rec.Apps {
		if float64(a.Result.Start) < minStart {
			minStart = float64(a.Result.Start)
		}
		if float64(a.Result.End) > maxEnd {
			maxEnd = float64(a.Result.End)
		}
		vol += float64(a.Result.Params.TotalBytes()) / float64(beegfs.MiB)
	}
	want := vol / (maxEnd - minStart)
	if math.Abs(rec.Aggregate-want)/want > 1e-9 {
		t.Fatalf("aggregate = %v, want %v", rec.Aggregate, want)
	}
}

func TestBandwidthsAndAggregatesHelpers(t *testing.T) {
	recs := []Record{
		{Aggregate: 5, Apps: []AppResult{{Result: ior.Result{Bandwidth: 2}}}},
		{Aggregate: 7, Apps: []AppResult{{Result: ior.Result{Bandwidth: 3}}}},
	}
	b := Bandwidths(recs)
	a := Aggregates(recs)
	if b[0] != 2 || b[1] != 3 || a[0] != 5 || a[1] != 7 {
		t.Fatalf("helpers broken: %v %v", b, a)
	}
	var empty Record
	if empty.Bandwidth() != 0 || empty.Alloc().Count() != 0 {
		t.Fatal("empty record accessors broken")
	}
}

func TestRecordSampleStatsSane(t *testing.T) {
	// Guard against accidental unit breakage: scenario-1 bandwidths stay
	// within [500, 3000] MiB/s for the standard configuration.
	pts, err := Fig6(cluster.Scenario1Ethernet, testOpts(12, 6))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		for _, s := range p.Samples {
			if s < 500 || s > 3000 {
				t.Fatalf("count %d sample %v outside sanity band", p.Count, s)
			}
		}
		if _, err := stats.Summarize(p.Samples); err != nil {
			t.Fatal(err)
		}
	}
}

// Same seed, same campaign — bit-for-bit, for ANY worker count. The
// reproducibility claim of EXPERIMENTS.md.
func TestCampaignDeterminism(t *testing.T) {
	run := func(workers int) []float64 {
		cfgs := []Config{
			{Label: "a", Params: ior.Params{Nodes: 4, PPN: 8, TransferSize: beegfs.MiB, StripeCount: 4}.WithTotalSize(8 * beegfs.GiB)},
			{Label: "b", Params: ior.Params{Nodes: 4, PPN: 8, TransferSize: beegfs.MiB, StripeCount: 8}.WithTotalSize(8 * beegfs.GiB), Apps: 2},
		}
		proto := Protocol{Repetitions: 6, BlockSize: 3, MinWait: 0.5, MaxWait: 2, Seed: 77}
		recs, err := Campaign{
			Platform: cluster.PlaFRIM(cluster.Scenario2Omnipath),
			Proto:    proto, Workers: workers, BackgroundCreateRate: 4,
		}.Run(cfgs)
		if err != nil {
			t.Fatal(err)
		}
		var out []float64
		for _, r := range recs {
			out = append(out, r.Aggregate)
			for _, a := range r.Apps {
				out = append(out, a.Result.Bandwidth)
			}
		}
		return out
	}
	x, y := run(1), run(1)
	z := run(4) // the pool must not change a single bit
	if len(x) != len(y) || len(x) != len(z) {
		t.Fatalf("lengths differ: %d vs %d vs %d", len(x), len(y), len(z))
	}
	for i := range x {
		if x[i] != y[i] {
			t.Fatalf("rerun value %d differs: %v vs %v", i, x[i], y[i])
		}
		if x[i] != z[i] {
			t.Fatalf("parallel value %d differs: %v vs %v", i, x[i], z[i])
		}
	}
}

// A target failing at the start of every repetition: new files avoid it;
// the campaign completes; allocations shrink to the 7 surviving targets.
func TestCampaignSurvivesTargetFailure(t *testing.T) {
	cfg := Config{
		Label:  "x",
		Params: ior.Params{Nodes: 4, PPN: 4, TransferSize: beegfs.MiB, StripeCount: 7}.WithTotalSize(4 * beegfs.GiB),
	}
	proto := Protocol{Repetitions: 4, BlockSize: 2, MinWait: 0.1, MaxWait: 0.5, Seed: 5}
	recs, err := Campaign{
		Platform: cluster.PlaFRIM(cluster.Scenario1Ethernet),
		Proto:    proto,
		// Fail OST 203 on each repetition's fresh deployment before it runs.
		Setup: func(dep *cluster.Deployment) error {
			return dep.FS.Mgmtd().SetOnline(203, false)
		},
	}.Run([]Config{cfg})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		for _, id := range r.Apps[0].Result.TargetIDs {
			if id == 203 {
				t.Fatal("failed target allocated to a new file")
			}
		}
		if r.Bandwidth() <= 0 {
			t.Fatal("run failed after target loss")
		}
	}
}

// Campaigns clean up after themselves: benchmark files are deleted after
// each repetition (as IOR does), so storage-target usage returns to zero
// and hundred-repetition campaigns cannot hit ENOSPC.
func TestCampaignCleansUpFiles(t *testing.T) {
	cfg := Config{
		Label:  "x",
		Params: ior.Params{Nodes: 4, PPN: 8, TransferSize: beegfs.MiB, StripeCount: 8}.WithTotalSize(32 * beegfs.GiB),
	}
	proto := Protocol{Repetitions: 5, BlockSize: 5, Seed: 3}
	inspected := 0
	_, err := Campaign{
		Platform: cluster.PlaFRIM(cluster.Scenario2Omnipath),
		Proto:    proto,
		Workers:  1, // keep the plain inspected counter race-free
		// Inspect runs post-cleanup on each repetition's private deployment.
		Inspect: func(dep *cluster.Deployment, rec *Record) error {
			inspected++
			if n := dep.FS.Meta().FileCount(); n != 0 {
				t.Errorf("rep %d: %d files left after cleanup", rec.Rep, n)
			}
			for _, tg := range dep.FS.Storage().Targets() {
				if tg.Used() != 0 {
					t.Errorf("rep %d: target %d still holds %d bytes", rec.Rep, tg.ID, tg.Used())
				}
			}
			return nil
		},
	}.Run([]Config{cfg})
	if err != nil {
		t.Fatal(err)
	}
	if inspected != 5 {
		t.Fatalf("Inspect ran %d times, want 5", inspected)
	}
}
