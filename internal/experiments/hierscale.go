// Hierarchical-solver scale campaign: the job churn of scale.go moved onto
// the over-subscribed FatTreeCore fabric, where cross-rack "drain" traffic
// through a shared core switch fuses every rack into one connected flow
// component — the worst case for the flat waterfill and the regime the
// hierarchical solver decomposes. Each topology runs three times on the
// identical workload: flat (batched solver, PR 7 baseline), hier-exact
// (partitioned solve, bit-identical contract) and hier-approx
// (bounded-error coordination, measured residual must stay within the
// bound). Like ExtScale the campaign is an experiment and a differential
// test at once: flat vs hier-exact extends the fuzzer's 0-ULP oracle to
// whole campaigns, and hier-approx turns Stats.HierMaxRelErr from a
// counter into an enforced acceptance criterion.
package experiments

import (
	"fmt"
	"math"
	"time"

	"repro/internal/beegfs"
	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/simkernel"
	"repro/internal/stats"
	"repro/internal/storagesim"
)

const (
	// hierScaleWorkers is the hierarchical worker-pool width. Fixed (not
	// tied to Options.Workers) for the same reason as scaleBatchWorkers:
	// rows must be identical at any -workers setting. Eight matches the
	// BenchmarkScaleChurn10k speedup target cell.
	hierScaleWorkers = 8
	// hierScaleBound is the hier-approx mode's configured relative error
	// bound; the campaign fails if the measured residual ever exceeds it.
	hierScaleBound = 0.01
	// hierScaleMinFlows lowers the hierarchical engagement threshold so
	// the partitioned path runs even at the campaign's CI size (-reps 2
	// builds components of tens of flows, not the >=192 the perf-tuned
	// default waits for).
	hierScaleMinFlows = 8
)

// ExtHierScaleRow is one (topology, solver mode) cell of the campaign.
type ExtHierScaleRow struct {
	Topology string
	Mode     string // "flat", "hier-exact" or "hier-approx"
	Racks    int
	Targets  int
	// Jobs counts completed jobs (rack-local writers plus cross-rack
	// drains); bandwidth is per-job volume / makespan in MiB/s.
	Jobs      int
	BWMean    float64
	BWMin     float64
	BWMax     float64
	PeakFlows int
	Events    uint64
	Solves    uint64
	// HierSolves/HierFallbacks split the component solves that reached the
	// hierarchical path from those it declined (degenerate partition,
	// too-small component). Zero in flat mode.
	HierSolves    uint64
	HierFallbacks uint64
	// OuterRounds sums bounded-error coordination rounds;
	// ExactFallbacks counts bounded solves that hit the round cap without
	// converging and re-ran exactly; MaxRelErr is the campaign-wide
	// maximum measured residual (0 in flat and exact modes, <=
	// hierScaleBound in approx mode — enforced).
	OuterRounds    uint64
	ExactFallbacks uint64
	MaxRelErr      float64
	// Wall-clock measurements; excluded from Deterministic and the CSV.
	WallSec      float64
	EventsPerSec float64
	StepP50us    float64
	StepP99us    float64
}

// Deterministic returns the row with its wall-clock fields zeroed — the
// portion that must be bit-identical across -workers settings.
func (r ExtHierScaleRow) Deterministic() ExtHierScaleRow {
	r.WallSec, r.EventsPerSec, r.StepP50us, r.StepP99us = 0, 0, 0, 0
	return r
}

// hierScaleTopo is one FatTreeCore fabric size of the campaign.
type hierScaleTopo struct {
	name       string
	spec       cluster.FatTreeSpec
	jobsPerRep int
	meanGap    float64
	// nodesBase/nodesSpread draw each local job's node count as
	// base + Intn(spread); zero values default to 2 + Intn(3).
	nodesBase   int
	nodesSpread int
}

func hierScaleTopos(reps int) []hierScaleTopo {
	// CoreRate is left 0: FatTreeCore's default (a quarter of the racks'
	// aggregate uplink rate) is the over-subscription this campaign is
	// about.
	topos := []hierScaleTopo{{
		name: "core-small",
		spec: cluster.FatTreeSpec{
			Racks: 4, OSSPerRack: 2, TargetsPerOSS: 4,
			LinkRate: 2500, UplinkRate: 5000,
		},
		jobsPerRep: 12,
		meanGap:    0.1,
	}}
	if reps >= 20 {
		topos = append(topos, hierScaleTopo{
			name: "core-large",
			spec: cluster.FatTreeSpec{
				Racks: 8, OSSPerRack: 4, TargetsPerOSS: 8,
				LinkRate: 2500, UplinkRate: 10000,
			},
			jobsPerRep: 24,
			meanGap:    0.1,
		})
	}
	return topos
}

// hierScaleJob is one application of the churn. Local jobs are the
// scale.go shape: same-rack nodes writing a rack-locally striped file.
// Drain jobs model cross-rack consumers — an unplaced client with no NIC
// of its own (think: a node in a remote compute rack) writing two
// rack-locally striped files in two *different* racks at once, so every
// byte crosses a rack uplink and the shared core. Each file's stripes
// stay within one rack (a file striped across racks would permanently
// coarsen the solver's never-splitting partition), but the two flows
// share the core, so for the drain's lifetime the two racks fuse into one
// component the hierarchical solver must decompose.
type hierScaleJob struct {
	rack    int
	rack2   int // second rack of a drain pair
	drain   bool
	nodes   int
	ppn     int
	perNode float64 // MiB written by each node (per file for drains)
	startAt simkernel.Time
	pending int
}

// runHierScaleCell simulates one (topology, mode) cell. hierWorkers == 0
// is flat mode; otherwise SetHierarchical(hierWorkers, maxRelErr).
// batchWorkers feeds SetBatching (0 = unbatched; the churn benchmark uses
// the unbatched path, where a single fused component gives the
// hierarchical solver's internal parallelism the cores).
func runHierScaleCell(topo hierScaleTopo, mode string, batchWorkers, hierWorkers int, maxRelErr float64, jobs int, seed uint64) (ExtHierScaleRow, error) {
	p, err := cluster.FatTreeCore("hierscale-"+topo.name, topo.spec)
	if err != nil {
		return ExtHierScaleRow{}, err
	}
	dep, err := p.Deploy()
	if err != nil {
		return ExtHierScaleRow{}, err
	}
	dep.Net.SetBatching(batchWorkers)
	if hierWorkers > 0 {
		dep.Net.SetHierarchical(hierWorkers, maxRelErr)
		dep.Net.SetHierarchicalMinFlows(hierScaleMinFlows)
	}
	// Pre-size the kernel's heap spine past the churn's high-water mark;
	// purely an allocation saving, invisible to results.
	dep.Sim.Reserve(4096)
	st := dep.EnableStats()

	racks := dep.FS.Racks()
	rackTargets := make([][]*storagesim.Target, racks)
	for _, tg := range dep.FS.Mgmtd().All() {
		r := dep.FS.RackOf(tg.Host())
		rackTargets[r] = append(rackTargets[r], tg)
	}
	cursor := make([]int, racks)
	pick := func(rack, width int) []*storagesim.Target {
		pool := rackTargets[rack]
		if width > len(pool) {
			width = len(pool)
		}
		out := make([]*storagesim.Target, width)
		for i := range out {
			out[i] = pool[(cursor[rack]+i)%len(pool)]
		}
		cursor[rack] = (cursor[rack] + width) % len(pool)
		return out
	}
	// Drain clients are created once and cycled; with no NIC resource they
	// add no edges of their own, so a drain flow's footprint is exactly
	// "one rack's storage + that uplink + the core".
	var drainClients []*beegfs.Client
	drainClient := func(i int) *beegfs.Client {
		for len(drainClients) <= i {
			drainClients = append(drainClients,
				dep.FS.NewClient(fmt.Sprintf("ext/drain%02d", len(drainClients)), 0))
		}
		return drainClients[i]
	}

	src := rng.New(seed)
	var (
		bws       []float64
		active    int
		peak      int
		submitted int
		jobSeq    int
	)
	startJob := func(job *hierScaleJob) error {
		// One file shared by the job's writers (the scale.go shape) for
		// local jobs; a drain pair instead writes one file in each of its
		// two racks from the same clientless node.
		type lane struct {
			client *beegfs.Client
			file   *beegfs.File
		}
		newFile := func(rack int) (*beegfs.File, error) {
			jobSeq++
			return dep.FS.CreateWithTargets(
				fmt.Sprintf("/hierscale/job%05d", jobSeq),
				beegfs.StripePattern{ChunkSize: 512 * beegfs.KiB},
				pick(rack, 4),
			)
		}
		var lanes []lane
		if job.drain {
			cl := drainClient(jobSeq % 4)
			for _, rack := range [2]int{job.rack, job.rack2} {
				f, err := newFile(rack)
				if err != nil {
					return err
				}
				lanes = append(lanes, lane{cl, f})
			}
		} else {
			f, err := newFile(job.rack)
			if err != nil {
				return err
			}
			for _, cl := range dep.NodesInRack(job.rack, job.nodes) {
				lanes = append(lanes, lane{cl, f})
			}
		}
		job.startAt = dep.Sim.Now()
		job.pending = len(lanes)
		total := job.perNode * float64(len(lanes))
		for _, ln := range lanes {
			op := &beegfs.WriteOp{
				Client: ln.client, File: ln.file,
				Length:       int64(job.perNode) * beegfs.MiB,
				TransferSize: beegfs.MiB,
				Procs:        job.ppn,
				App:          ln.file.Path,
				OnComplete: func(at simkernel.Time) {
					active--
					job.pending--
					if job.pending == 0 {
						bws = append(bws, total/float64(at-job.startAt))
					}
				},
				OnError: func(err error) {
					panic(fmt.Sprintf("experiments: hierscale job failed: %v", err))
				},
			}
			if _, err := dep.FS.StartWrite(op); err != nil {
				return err
			}
			active++
			if active > peak {
				peak = active
			}
		}
		return nil
	}
	// Poisson arrival chain; all rng draws happen in arrival events at
	// distinct instants, so the stream is identical in every mode.
	nodesBase, nodesSpread := topo.nodesBase, topo.nodesSpread
	if nodesBase == 0 {
		nodesBase, nodesSpread = 2, 3
	}
	var arrive func()
	arrive = func() {
		job := &hierScaleJob{
			rack: src.Intn(racks),
		}
		if src.Intn(3) == 0 {
			job.drain = true
			job.rack2 = (job.rack + 1 + src.Intn(racks-1)) % racks
			job.ppn = 4
			job.perNode = 1024 + float64(src.Intn(4))*256
		} else {
			job.nodes = nodesBase + src.Intn(nodesSpread)
			job.ppn = 4
			job.perNode = 256 + float64(src.Intn(4))*128
		}
		if err := startJob(job); err != nil {
			panic(fmt.Sprintf("experiments: hierscale job submit: %v", err))
		}
		submitted++
		if submitted < jobs {
			dep.Sim.After(src.Exp(topo.meanGap), arrive)
		}
	}
	dep.Sim.After(0.01, arrive)

	var stepNanos obs.Log2Hist
	begin := time.Now()
	prev := begin
	for dep.Sim.Step() {
		now := time.Now()
		stepNanos.Observe(uint64(now.Sub(prev)))
		prev = now
		if dep.Sim.Executed() > 200_000_000 {
			return ExtHierScaleRow{}, fmt.Errorf("experiments: hierscale cell %s/%s runaway event loop", topo.name, mode)
		}
	}
	wall := time.Since(begin).Seconds()
	if len(bws) != jobs {
		return ExtHierScaleRow{}, fmt.Errorf("experiments: hierscale cell %s/%s finished %d of %d jobs", topo.name, mode, len(bws), jobs)
	}
	sum, err := stats.Summarize(bws)
	if err != nil {
		return ExtHierScaleRow{}, err
	}
	var solves uint64
	for _, c := range st.Net.Solves {
		solves += c
	}
	events := st.Kernel.Dispatched
	return ExtHierScaleRow{
		Topology:       topo.name,
		Mode:           mode,
		Racks:          racks,
		Targets:        len(dep.FS.Mgmtd().All()),
		Jobs:           len(bws),
		BWMean:         sum.Mean,
		BWMin:          sum.Min,
		BWMax:          sum.Max,
		PeakFlows:      peak,
		Events:         events,
		Solves:         solves,
		HierSolves:     st.Net.HierSolves,
		HierFallbacks:  st.Net.HierFallbacks,
		OuterRounds:    st.Net.HierOuterRounds,
		ExactFallbacks: st.Net.HierExactFallbacks,
		MaxRelErr:      st.Net.HierMaxRelErr,
		WallSec:        wall,
		EventsPerSec:   float64(events) / wall,
		StepP50us:      histQuantileUS(&stepNanos, 0.50),
		StepP99us:      histQuantileUS(&stepNanos, 0.99),
	}, nil
}

// ExtHierScale runs every FatTreeCore topology in all three solver modes
// and enforces the mode contracts in-line:
//
//   - hier-exact must reproduce flat's simulated results bit-for-bit
//     (bandwidth statistics, job count, peak concurrency) AND must
//     actually have taken the hierarchical path — a silently always-
//     falling-back solver would pass the equality vacuously.
//   - hier-approx must complete the same jobs and its measured residual
//     (Stats.HierMaxRelErr) must not exceed the configured bound.
//
// A violation is an error, not a row.
func ExtHierScale(opts Options) ([]ExtHierScaleRow, error) {
	reps := opts.Reps
	if reps <= 0 {
		reps = 4
	}
	topos := hierScaleTopos(reps)
	modes := []struct {
		name      string
		workers   int
		maxRelErr float64
	}{
		{"flat", 0, 0},
		{"hier-exact", hierScaleWorkers, 0},
		{"hier-approx", hierScaleWorkers, hierScaleBound},
	}
	rows := make([]ExtHierScaleRow, len(topos)*len(modes))
	err := forEachCell(len(rows), opts.Workers, func(cell int) error {
		topo := topos[cell/len(modes)]
		m := modes[cell%len(modes)]
		jobs := topo.jobsPerRep * reps
		// A distinct stream family from ExtScale (977/53) so the two
		// campaigns stay independent at any shared seed.
		seed := opts.Seed*1061 + uint64(cell/len(modes))*53
		// Every campaign mode runs batched at the same width; the modes
		// differ only in what happens inside a component solve.
		row, err := runHierScaleCell(topo, m.name, scaleBatchWorkers, m.workers, m.maxRelErr, jobs, seed)
		if err != nil {
			return err
		}
		rows[cell] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i := 0; i+2 < len(rows); i += 3 {
		flat, exact, approx := rows[i], rows[i+1], rows[i+2]
		if exact.Jobs != flat.Jobs || exact.PeakFlows != flat.PeakFlows ||
			math.Float64bits(exact.BWMean) != math.Float64bits(flat.BWMean) ||
			math.Float64bits(exact.BWMin) != math.Float64bits(flat.BWMin) ||
			math.Float64bits(exact.BWMax) != math.Float64bits(flat.BWMax) {
			return nil, fmt.Errorf("experiments: hierscale topology %s: hier-exact diverges from flat (bw %v vs %v)",
				flat.Topology, exact.BWMean, flat.BWMean)
		}
		if exact.HierSolves == 0 {
			return nil, fmt.Errorf("experiments: hierscale topology %s: hier-exact never took the hierarchical path (equality is vacuous)",
				flat.Topology)
		}
		if exact.MaxRelErr != 0 {
			return nil, fmt.Errorf("experiments: hierscale topology %s: exact mode reported residual %g",
				flat.Topology, exact.MaxRelErr)
		}
		if approx.Jobs != flat.Jobs {
			return nil, fmt.Errorf("experiments: hierscale topology %s: hier-approx finished %d jobs, flat %d",
				flat.Topology, approx.Jobs, flat.Jobs)
		}
		if approx.MaxRelErr > hierScaleBound {
			return nil, fmt.Errorf("experiments: hierscale topology %s: measured residual %g exceeds bound %g",
				flat.Topology, approx.MaxRelErr, hierScaleBound)
		}
	}
	return rows, nil
}
