package beegfs

import (
	"repro/internal/obs"
	"repro/internal/simkernel"
)

// Stats counts file-system activity for the observability layer. Like the
// kernel and network counterparts it is a plain per-deployment struct
// updated behind nil checks on the I/O hot path — no atomics (a deployment
// is single-goroutine), and nothing it records feeds back into target
// selection, striping or flow arithmetic, so enabling it cannot perturb
// the simulated numbers.
type Stats struct {
	// WriteOps and ReadOps count started I/O operations (coalesced
	// multi-rank ops count once).
	WriteOps uint64
	ReadOps  uint64
	// OpMiB is the histogram of op volumes in MiB (rounded down).
	OpMiB obs.Log2Hist
	// StripeWidth is the histogram of stripes actually carrying bytes
	// per op (≤ the file's stripe count for sub-stripe regions).
	StripeWidth obs.Log2Hist
	// BytesByOST attributes completed write bytes (including the mirror
	// copy) to storage target IDs.
	BytesByOST map[int]uint64
	// RetriesScheduled counts fault-triggered re-issues queued by the
	// retry machinery; FailedOps counts ops that exhausted their budget.
	RetriesScheduled uint64
	FailedOps        uint64
	// DegradedWrites counts completed mirrored writes that could place
	// bytes on only one replica side; ReadFailovers counts per-stripe
	// read redirects to the mirror; ResyncsStarted counts resync flows.
	DegradedWrites uint64
	ReadFailovers  uint64
	ResyncsStarted uint64
	// PlanPoolMisses / AttemptPoolMisses count pool Gets that had to
	// allocate; the complementary hits reused a recycled object.
	PlanPoolHits      uint64
	PlanPoolMisses    uint64
	AttemptPoolHits   uint64
	AttemptPoolMisses uint64
	// ActiveClientsHighWater is the maximum number of compute nodes with
	// concurrently in-flight writes.
	ActiveClientsHighWater uint64
	// ReachTransitions counts effective reachability transitions published
	// by the mgmtd (heartbeat verdicts, or omniscient flips when
	// heartbeats are disabled).
	ReachTransitions uint64
	// StaleRPCFailures counts issues that selected a replica from the
	// stale cluster map and died against its dead ground truth.
	StaleRPCFailures uint64
	// HeartbeatSweeps counts heartbeat monitor rounds (0 with heartbeats
	// disabled, and 0 in fault-free runs — the monitor is lazy).
	HeartbeatSweeps uint64
	// SweepTargets is the histogram of targets examined per heartbeat
	// sweep — the per-round cost of the timeout ladder.
	SweepTargets obs.Log2Hist
}

// SetStats attaches (or with nil detaches) an activity counter sink.
func (fs *FileSystem) SetStats(st *Stats) {
	if st != nil && st.BytesByOST == nil {
		st.BytesByOST = make(map[int]uint64)
	}
	fs.stats = st
}

// OpEvent describes one finished I/O operation to an op observer. Flow
// names carry no client identity, so the tracer builds its per-client
// timeline tracks from these instead.
type OpEvent struct {
	Client string
	App    string
	Path   string
	Read   bool
	// Start is when the op was first issued (including ops whose first
	// issue was queued behind the retry machinery); End is when it
	// completed or terminally failed.
	Start simkernel.Time
	End   simkernel.Time
	MiB   float64
	// Attempts counts fault-triggered re-issues (0 = clean first issue).
	Attempts int
	// EndOffset is the exclusive end of the op's touched byte range; for a
	// successful write it is the boundary the invariant checker holds the
	// file's size to ("no acknowledged write loses bytes").
	EndOffset int64
	// Err is non-nil when the op failed terminally.
	Err error
}

// SetOpObserver registers a callback fired at every op's terminal point
// (completion or terminal failure). Pass nil to remove it. The callback
// must not mutate simulation state.
func (fs *FileSystem) SetOpObserver(fn func(ev OpEvent)) {
	fs.opObserver = fn
}

// OpObserver returns the currently installed op observer (nil if none),
// so a second consumer — the invariant checker — can compose with an
// already-attached tracer instead of displacing it.
func (fs *FileSystem) OpObserver() func(ev OpEvent) { return fs.opObserver }
