package simnet

import (
	"fmt"
	"testing"

	"repro/internal/simkernel"
)

// manyCompNet builds comps disjoint 4-flow components (one shared
// resource plus a private one per flow, infinite volumes) under batching
// with a serial flush, warmed so steady-state flushes do not allocate.
func manyCompNet(comps int) (*simkernel.Simulation, *Network, []*Resource) {
	sim := simkernel.New()
	net := New(sim)
	net.SetBatching(1)
	shared := make([]*Resource, comps)
	for c := range shared {
		shared[c] = net.AddResource(fmt.Sprintf("g%03d/s", c), 200+float64(c%7)*50)
		for i := 0; i < 4; i++ {
			own := net.AddResource(fmt.Sprintf("g%03d/n%d", c, i), 80+float64(i)*10)
			net.Start(&Flow{
				Name:   fmt.Sprintf("g%03d/f%d", c, i),
				Volume: 1e15,
				Usage:  map[*Resource]float64{shared[c]: 1, own: 1},
			})
		}
	}
	drainInstant(sim)
	return sim, net, shared
}

// drainInstant fires only the events pending at the current instant (the
// batched flush wave and its cascades), leaving the flows' far-future
// completion events queued — virtual time must not advance, or the
// long-running flows would complete and later iterations would measure
// empty components.
func drainInstant(sim *simkernel.Simulation) {
	sim.RunUntil(sim.Now())
}

// benchmarkSolveManyComponents measures one full batched flush wave:
// every component dirtied by a capacity event at the same instant, then a
// single flush solving them all in component-id order. This is the
// per-instant cost the parallel flush divides.
func benchmarkSolveManyComponents(b *testing.B, comps int) {
	sim, net, shared := manyCompNet(comps)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v := 500.0
		if i&1 == 0 {
			v = 700
		}
		for _, r := range shared {
			net.SetCapacity(r, v)
		}
		drainInstant(sim)
	}
}

func BenchmarkSolveManyComponents64(b *testing.B)  { benchmarkSolveManyComponents(b, 64) }
func BenchmarkSolveManyComponents256(b *testing.B) { benchmarkSolveManyComponents(b, 256) }

// benchmarkEventBatchRamp measures the tentpole's motivating storm: 64
// same-instant flow starts on one shared ramp resource. Unbatched, every
// start re-solves the whole ramp component (O(clients) solves per
// instant); batched, the instant costs one solve. Each iteration starts
// the wave, drains, aborts it and drains again, so both modes do the same
// membership work and differ only in solve cadence.
func benchmarkEventBatchRamp(b *testing.B, workers int) {
	const clients = 64
	sim := simkernel.New()
	net := New(sim)
	net.SetBatching(workers)
	ramp := net.AddResource("ramp", 1000)
	own := make([]*Resource, clients)
	for i := range own {
		own[i] = net.AddResource(fmt.Sprintf("nic%03d", i), 40+float64(i%7)*5)
	}
	flows := make([]Flow, clients)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for c := range flows {
			flows[c] = Flow{
				Name:   "f",
				Volume: 1e15,
				Usage:  map[*Resource]float64{ramp: 0.5, own[c]: 1},
			}
			net.Start(&flows[c])
		}
		drainInstant(sim)
		for c := range flows {
			net.Abort(&flows[c])
		}
		drainInstant(sim)
	}
}

func BenchmarkEventBatchRamp(b *testing.B) {
	b.Run("unbatched", func(b *testing.B) { benchmarkEventBatchRamp(b, 0) })
	b.Run("batched", func(b *testing.B) { benchmarkEventBatchRamp(b, 1) })
}
