package beegfs

import (
	"fmt"

	"repro/internal/rng"
	"repro/internal/storagesim"
)

// TargetChooser selects which storage targets a new file is striped over.
// The paper shows the chooser is as important as the stripe count itself
// (§IV-C1): PlaFRIM's round-robin chooser makes a stripe count of 4 always
// land on a (1,3) allocation, capping bandwidth below 50% of peak in the
// network-limited scenario.
type TargetChooser interface {
	// Choose returns k targets from the online list, in stripe order.
	// src supplies randomness for stochastic choosers.
	Choose(k int, online []*storagesim.Target, src *rng.Source) ([]*storagesim.Target, error)
	// Name identifies the heuristic ("roundrobin", "random", "balanced").
	Name() string
}

// CloneChooser is implemented by choosers that can hand out an independent
// copy of themselves. The parallel campaign engine clones the platform's
// chooser for every repetition's private deployment, so concurrent
// repetitions never share mutable chooser state. State keyed to a specific
// deployment's objects (e.g. per-host rotation maps) does not transfer; the
// copy starts that state fresh. Custom stateful choosers should implement
// this; stateless choosers that don't are shared as-is.
type CloneChooser interface {
	TargetChooser
	Clone() TargetChooser
}

// CursorChooser is implemented by choosers whose cross-file state is a
// single rotating cursor. The campaign engine uses it to seed each
// repetition's fresh chooser with the cursor position the §III-C serial
// protocol would have reached — the mechanism behind Figure 6a's
// bimodality and the "count 4 is always (1,3)" result.
type CursorChooser interface {
	TargetChooser
	Cursor() int
	SetCursor(int)
}

func checkChoice(k, online int) error {
	if k <= 0 {
		return fmt.Errorf("beegfs: stripe count must be positive, got %d", k)
	}
	if k > online {
		return fmt.Errorf("beegfs: stripe count %d exceeds %d online targets", k, online)
	}
	return nil
}

// RoundRobinChooser reproduces the deterministic heuristic deployed on
// PlaFRIM: targets are kept in a fixed registration order and each new file
// takes the next k targets from a rotating cursor that advances by k.
//
// With PlaFRIM's registration order (101, 201, 202, 203, 204, 102, 103,
// 104) and stripe count 4, the only two allocations ever produced are
// (101, 201, 202, 203) and (204, 102, 103, 104) — both (1,3) in the
// paper's (min,max) notation, exactly as reported in §IV-C1.
type RoundRobinChooser struct {
	cursor int
}

// Name implements TargetChooser.
func (c *RoundRobinChooser) Name() string { return "roundrobin" }

// Choose implements TargetChooser.
func (c *RoundRobinChooser) Choose(k int, online []*storagesim.Target, _ *rng.Source) ([]*storagesim.Target, error) {
	if err := checkChoice(k, len(online)); err != nil {
		return nil, err
	}
	out := make([]*storagesim.Target, k)
	for i := 0; i < k; i++ {
		out[i] = online[(c.cursor+i)%len(online)]
	}
	c.cursor = (c.cursor + k) % len(online)
	return out, nil
}

// Reset rewinds the cursor to the start of the registration order.
func (c *RoundRobinChooser) Reset() { c.cursor = 0 }

// Cursor implements CursorChooser.
func (c *RoundRobinChooser) Cursor() int { return c.cursor }

// SetCursor implements CursorChooser. The position is taken modulo the
// online-target count at the next Choose, so any non-negative value works.
func (c *RoundRobinChooser) SetCursor(pos int) { c.cursor = pos }

// Clone implements CloneChooser.
func (c *RoundRobinChooser) Clone() TargetChooser { return &RoundRobinChooser{cursor: c.cursor} }

// RandomChooser is BeeGFS' default: a uniformly random k-subset of the
// online targets. The paper notes (§IV-C1) that with this chooser a stripe
// count of 4 *can* produce the balanced (2,2) allocation — but with high
// variability, "the best case being as likely as the worst case".
type RandomChooser struct{}

// Name implements TargetChooser.
func (RandomChooser) Name() string { return "random" }

// Clone implements CloneChooser (the chooser is stateless).
func (c RandomChooser) Clone() TargetChooser { return c }

// Choose implements TargetChooser.
func (RandomChooser) Choose(k int, online []*storagesim.Target, src *rng.Source) ([]*storagesim.Target, error) {
	if err := checkChoice(k, len(online)); err != nil {
		return nil, err
	}
	if src == nil {
		return nil, fmt.Errorf("beegfs: random chooser needs a randomness source")
	}
	idx := src.Perm(len(online))[:k]
	out := make([]*storagesim.Target, k)
	for i, j := range idx {
		out[i] = online[j]
	}
	return out, nil
}

// BalancedChooser implements the heuristic the paper recommends in lesson
// 4: pick the same number of targets from every storage server (as equal
// as k allows), rotating within each server so load spreads over devices.
// For odd remainders the extra targets go to the least-recently-used
// servers first.
type BalancedChooser struct {
	rotation map[*storagesim.Host]int
	hostTurn int
}

// Name implements TargetChooser.
func (c *BalancedChooser) Name() string { return "balanced" }

// Clone implements CloneChooser. The rotation map is keyed by host objects
// of one deployment and cannot transfer to another; the copy starts with a
// fresh rotation (hostTurn carries over, it is deployment-independent).
func (c *BalancedChooser) Clone() TargetChooser { return &BalancedChooser{hostTurn: c.hostTurn} }

// Choose implements TargetChooser.
func (c *BalancedChooser) Choose(k int, online []*storagesim.Target, _ *rng.Source) ([]*storagesim.Target, error) {
	if err := checkChoice(k, len(online)); err != nil {
		return nil, err
	}
	if c.rotation == nil {
		c.rotation = make(map[*storagesim.Host]int)
	}
	// Group online targets per host, preserving order.
	var hosts []*storagesim.Host
	perHost := make(map[*storagesim.Host][]*storagesim.Target)
	for _, t := range online {
		if _, ok := perHost[t.Host()]; !ok {
			hosts = append(hosts, t.Host())
		}
		perHost[t.Host()] = append(perHost[t.Host()], t)
	}
	// Distribute k as evenly as possible, assigning remainders starting at
	// a rotating host so repeated odd counts alternate the heavier server.
	counts := make([]int, len(hosts))
	base := k / len(hosts)
	rem := k % len(hosts)
	for i := range hosts {
		counts[i] = base
	}
	for i := 0; i < rem; i++ {
		counts[(c.hostTurn+i)%len(hosts)]++
	}
	c.hostTurn = (c.hostTurn + rem) % len(hosts)
	// Some hosts may have fewer online targets than their quota; spill the
	// excess to others.
	spill := 0
	for i, h := range hosts {
		if counts[i] > len(perHost[h]) {
			spill += counts[i] - len(perHost[h])
			counts[i] = len(perHost[h])
		}
	}
	for i, h := range hosts {
		for spill > 0 && counts[i] < len(perHost[h]) {
			counts[i]++
			spill--
		}
	}
	var out []*storagesim.Target
	for i, h := range hosts {
		list := perHost[h]
		start := c.rotation[h]
		for j := 0; j < counts[i]; j++ {
			out = append(out, list[(start+j)%len(list)])
		}
		c.rotation[h] = (start + counts[i]) % len(list)
	}
	return out, nil
}

// RandomInterNodeChooser implements BeeGFS's "randominternode" target
// choice policy: targets are picked randomly but successive picks cycle
// through distinct storage servers, so a file's targets spread across
// hosts as evenly as the count allows. On PlaFRIM it turns stripe count 4
// into a guaranteed (2,2) — the balanced allocation the deterministic
// round-robin never produces — while keeping per-target load randomized.
type RandomInterNodeChooser struct{}

// Name implements TargetChooser.
func (RandomInterNodeChooser) Name() string { return "randominternode" }

// Clone implements CloneChooser (the chooser is stateless).
func (c RandomInterNodeChooser) Clone() TargetChooser { return c }

// Choose implements TargetChooser.
func (RandomInterNodeChooser) Choose(k int, online []*storagesim.Target, src *rng.Source) ([]*storagesim.Target, error) {
	if err := checkChoice(k, len(online)); err != nil {
		return nil, err
	}
	if src == nil {
		return nil, fmt.Errorf("beegfs: randominternode chooser needs a randomness source")
	}
	// Bucket the online targets per host and shuffle each bucket.
	var hosts []*storagesim.Host
	perHost := map[*storagesim.Host][]*storagesim.Target{}
	for _, t := range online {
		if _, ok := perHost[t.Host()]; !ok {
			hosts = append(hosts, t.Host())
		}
		perHost[t.Host()] = append(perHost[t.Host()], t)
	}
	for _, h := range hosts {
		list := perHost[h]
		src.Shuffle(len(list), func(i, j int) { list[i], list[j] = list[j], list[i] })
	}
	// Visit hosts in random order, one target per host per round.
	src.Shuffle(len(hosts), func(i, j int) { hosts[i], hosts[j] = hosts[j], hosts[i] })
	out := make([]*storagesim.Target, 0, k)
	for round := 0; len(out) < k; round++ {
		progressed := false
		for _, h := range hosts {
			if len(out) == k {
				break
			}
			if round < len(perHost[h]) {
				out = append(out, perHost[h][round])
				progressed = true
			}
		}
		if !progressed {
			return nil, fmt.Errorf("beegfs: randominternode exhausted targets at %d of %d", len(out), k)
		}
	}
	return out, nil
}
