package simnet

import (
	"fmt"
	"testing"

	"repro/internal/rng"
	"repro/internal/simkernel"
)

// hierNet builds the oversubscribed fat-tree shape the hierarchical solver
// targets, as one fused component mirroring the hierscale campaign: each
// rack holds flowsPerRack local striped writes over its own target links
// (with rack-banded client caps, so cap-frontier freezes localize to one
// rack at a time, as the campaign's per-rack job mixes do), and one
// cross-rack drain pair per rack rides its uplink and the shared 4:1
// oversubscribed core. The core couples every rack, so the flat solver
// sees one giant component while the partition sees `racks` local groups.
func hierNet(racks, targetsPerRack, flowsPerRack, workers int) (*Network, *component) {
	src := rng.New(23)
	net := New(simkernel.New())
	core := net.AddResource("core", float64(racks)*10000/4)
	seps := []*Resource{core}
	tgts := make([][]*Resource, racks)
	ups := make([]*Resource, racks)
	for i := range ups {
		ups[i] = net.AddResource(fmt.Sprintf("rack%02d/up", i), 10000)
		seps = append(seps, ups[i])
		tgts[i] = make([]*Resource, targetsPerRack)
		for j := range tgts[i] {
			tgts[i][j] = net.AddResource(fmt.Sprintf("rack%02d/t%02d", i, j), 2500)
		}
	}
	net.SetSeparators(seps...)
	if workers > 0 {
		net.SetHierarchical(workers, 0)
	}
	stripe := func(usage map[*Resource]float64, r int) {
		for _, j := range src.Perm(targetsPerRack)[:4] {
			usage[tgts[r][j]] = 0.25 + src.Float64()*0.5
		}
	}
	for i := 0; i < racks*flowsPerRack; i++ {
		r := i % racks
		usage := make(map[*Resource]float64, 4)
		stripe(usage, r)
		f := &Flow{Name: fmt.Sprintf("f%05d", i), Volume: 1e15, Usage: usage}
		// Per-rack cap bands with a straggler minority: freezes walk the
		// racks one band at a time instead of sweeping every group at once.
		if i%8 != 0 {
			f.Cap = 20 + 15*float64(r) + 0.5*float64(i/racks%16)
		} else {
			f.Cap = 800 + float64(i)*0.125
		}
		net.Start(f)
	}
	for r := 0; r < racks; r++ {
		// The drain pair: two uncapped cross-rack writes sharing the core,
		// one through this rack's uplink, one through the next's.
		for k := 0; k < 2; k++ {
			rr := (r + k) % racks
			usage := map[*Resource]float64{core: 1, ups[rr]: 1}
			stripe(usage, rr)
			net.Start(&Flow{Name: fmt.Sprintf("drain%02d-%d", r, k), Volume: 1e15, Usage: usage})
		}
	}
	return net, net.comps[0]
}

// BenchmarkHierSolve measures one cold solve of the fused fat-tree
// component — the pure-CPU cost a churn event pays, isolated from the
// event loop. The flat/hier ratio is the hierarchical decomposition's
// per-solve speedup; hier-par8 adds the internal worker fan-out for the
// re-accumulation passes. Gated against BENCH_PR8.json in CI.
func BenchmarkHierSolve(b *testing.B) {
	const racks, targetsPerRack, flowsPerRack = 16, 32, 256
	b.Run("flat", func(b *testing.B) {
		net, c := hierNet(racks, targetsPerRack, flowsPerRack, 0)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			net.sv.solve(c.flows, c.resources, c.capped, nil)
		}
	})
	for _, bench := range []struct {
		name    string
		workers int
		par     bool
	}{{"hier", 1, false}, {"hier-par8", 8, true}} {
		b.Run(bench.name, func(b *testing.B) {
			net, c := hierNet(racks, targetsPerRack, flowsPerRack, bench.workers)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if !net.hier.trySolve(c, &net.sv, nil, bench.par) {
					b.Fatal("hierarchical solve declined the fused component")
				}
			}
		})
	}
}
