package simnet_test

import (
	"fmt"

	"repro/internal/simkernel"
	"repro/internal/simnet"
)

// Weighted max-min fairness over shared resources: the classic two-link
// example. Flow c crosses both links, so it is bottlenecked by the slower
// one; flow a then takes the slack on L1.
func ExampleFairShare() {
	sim := simkernel.New()
	net := simnet.New(sim)
	l1 := net.AddResource("L1", 10)
	l2 := net.AddResource("L2", 8)
	a := &simnet.Flow{Name: "a", Usage: map[*simnet.Resource]float64{l1: 1}}
	b := &simnet.Flow{Name: "b", Usage: map[*simnet.Resource]float64{l2: 1}}
	c := &simnet.Flow{Name: "c", Usage: map[*simnet.Resource]float64{l1: 1, l2: 1}}
	rates := simnet.FairShare([]*simnet.Flow{a, b, c})
	fmt.Printf("a=%.0f b=%.0f c=%.0f\n", rates[0], rates[1], rates[2])
	// Output:
	// a=6 b=4 c=4
}

// A striped write as one fluid flow: allocation (1,3) puts 3/4 of the
// traffic on one server NIC, capping the flow at 4/3 of a single link —
// the paper's Figure 9.
func ExampleNetwork() {
	sim := simkernel.New()
	net := simnet.New(sim)
	oss1 := net.AddResource("oss1/nic", 1100)
	oss2 := net.AddResource("oss2/nic", 1100)
	flow := &simnet.Flow{
		Name:   "ior",
		Volume: 32 * 1024, // 32 GiB in MiB
		Usage:  map[*simnet.Resource]float64{oss1: 0.25, oss2: 0.75},
		OnComplete: func(at simkernel.Time) {
			fmt.Printf("done at %.1fs -> %.0f MiB/s\n", float64(at), 32*1024/float64(at))
		},
	}
	net.Start(flow)
	if err := sim.Run(); err != nil {
		fmt.Println(err)
	}
	// Output:
	// done at 22.3s -> 1467 MiB/s
}
